package bench

import (
	"fmt"
	"os"
	"sync/atomic"
	"time"
)

// Sweep progress is presentation-only: a single updating stderr line with
// done/total, elapsed time, and an ETA. It reads the wall clock and never
// feeds back into simulation results. The line is emitted only when stderr
// is a terminal (redirected runs and CI logs stay clean) and can be
// silenced explicitly with the CLIs' -quiet flag via SetProgress.

var progressOn atomic.Bool

func init() { progressOn.Store(stderrIsTTY()) }

// SetProgress enables or disables the sweep progress line. Enabling it
// still requires stderr to be a terminal.
func SetProgress(on bool) { progressOn.Store(on && stderrIsTTY()) }

func stderrIsTTY() bool {
	st, err := os.Stderr.Stat()
	return err == nil && st.Mode()&os.ModeCharDevice != 0
}

// progressMeter tracks one RunCells sweep. Completions arrive from many
// workers; prints are throttled and serialized through a CAS on lastPrint.
type progressMeter struct {
	// total and start are fixed by the constructor before the meter is
	// handed to any worker; only the two atomics below move afterwards.
	total int       //dsp:owned(setup)
	start time.Time //dsp:owned(setup)
	done  atomic.Int64
	// lastPrint is unix nanos of the most recent line, 0 before the first.
	lastPrint atomic.Int64
}

const progressEvery = 200 * time.Millisecond

//dsplint:wallclock
func newProgressMeter(total int) *progressMeter {
	if !progressOn.Load() || total < 2 {
		return nil
	}
	return &progressMeter{total: total, start: time.Now()}
}

// tick records one finished cell and redraws the line when due. Nil
// receivers are no-ops so call sites stay unconditional.
//
//dsplint:wallclock
func (p *progressMeter) tick() {
	if p == nil {
		return
	}
	n := p.done.Add(1)
	now := time.Now()
	last := p.lastPrint.Load()
	if n < int64(p.total) && now.UnixNano()-last < int64(progressEvery) {
		return
	}
	if !p.lastPrint.CompareAndSwap(last, now.UnixNano()) {
		return // another worker is printing this interval
	}
	elapsed := now.Sub(p.start)
	// Rate and ETA divide by elapsed and n respectively; both can be zero
	// on the first tick (a cache hit completes in the clock's granularity),
	// so each division is guarded rather than trusted.
	eta, rate := "--", "--"
	if n > 0 {
		rem := time.Duration(float64(elapsed) / float64(n) * float64(int64(p.total)-n))
		eta = rem.Round(time.Second).String()
	}
	if secs := elapsed.Seconds(); secs > 0 {
		rate = fmt.Sprintf("%.1f/s", float64(n)/secs)
	}
	fmt.Fprintf(os.Stderr, "\r\x1b[K%d/%d cells  elapsed %s  %s  eta %s",
		n, p.total, elapsed.Round(time.Second), rate, eta)
}

// finish clears the progress line so subsequent output starts clean.
func (p *progressMeter) finish() {
	if p == nil {
		return
	}
	fmt.Fprintf(os.Stderr, "\r\x1b[K")
}
