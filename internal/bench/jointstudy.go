package bench

import (
	"fmt"
	"strings"

	"streamscale/internal/apps"
	"streamscale/internal/hw"
	"streamscale/internal/place"
)

// --- Joint optimization study: RLAS vs placement-only ---------------------

// JointRow compares the joint parallelism + placement winner against the
// placement-only winner for one (app, system, batch) row.
type JointRow struct {
	App, System string
	Batch       int
	// Fixed and Joint are measured throughputs (events/s); Joint equals
	// Fixed when no rescaled configuration measured strictly better.
	Fixed float64
	Joint float64
	// Gain is Joint/Fixed - 1.
	Gain float64
	// Par describes the winning parallelism ("default" or op=k pairs).
	Par string
	// Screened and Searched are the joint search's vector counters.
	Screened, Searched int
}

// JointStudy runs the joint search on every (app, system) row at the
// default batch size — the combined operating point where both the paper's
// optimizations are on and the parallelism axis matters most. The
// placement-only searches and probes are memo-shared with the Fig 14/15
// study, so the incremental cost is the joint verification simulations.
func JointStudy() ([]JointRow, error) {
	var out []JointRow
	for _, app := range apps.BenchmarkNames() {
		for _, sys := range Systems {
			for _, batch := range []int{place.DefaultBatchSize} {
				js, err := SearchJoint(app, sys, batch, 4)
				if err != nil {
					return nil, fmt.Errorf("%s/%s joint (batch %d): %w", app, sys, batch, err)
				}
				out = append(out, JointRow{
					App: app, System: sys, Batch: batch,
					Fixed:    js.FixedThroughput,
					Joint:    js.Throughput,
					Gain:     js.Throughput/js.FixedThroughput - 1,
					Par:      js.ParString(),
					Screened: js.VectorsScreened, Searched: js.VectorsSearched,
				})
			}
		}
	}
	return out, nil
}

// JointTable renders the joint-vs-fixed comparison.
func JointTable(rows []JointRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Joint parallelism + placement (RLAS) vs placement-only search (4 sockets)\n")
	fmt.Fprintf(&b, "%-6s %-6s %5s %12s %12s %7s %9s  %s\n",
		"sys", "app", "batch", "fixed(ev/s)", "joint(ev/s)", "gain", "screened", "winner")
	for _, sys := range Systems {
		for _, r := range rows {
			if r.System != sys {
				continue
			}
			fmt.Fprintf(&b, "%-6s %-6s %5d %12.0f %12.0f %+6.1f%% %9d  %s\n",
				r.System, r.App, r.Batch, r.Fixed, r.Joint, r.Gain*100, r.Screened, r.Par)
		}
	}
	return b.String()
}

// --- Joint optimum across machine shapes (predicted) ----------------------

// JointShiftRow tracks how the predicted joint optimum moves across
// machine-spec variants for one (app, system) row: per variant, the
// winning configuration's total executor count and distinct socket count.
type JointShiftRow struct {
	App, System string
	// Execs and K are indexed by hw.VariantNames() order.
	Execs []int
	K     []int
	// Shifts counts variants whose winning parallelism vector differs from
	// the Table III baseline's.
	Shifts int
}

// jointShiftOptions are deliberately smaller than the verification
// search's: this sweep is analytic-only (nothing is simulated), runs
// 6 variants x 14 rows, and only the winner is reported.
func jointShiftOptions(workers int) place.JointOptions {
	return place.JointOptions{
		TopM: 1, TopVectors: 4,
		Search: place.SearchOptions{TopM: 2, NodeBudget: 4000, SplitDepth: 2, Workers: workers},
	}
}

// JointShift recalibrates each row's probe model onto every machine-spec
// variant (place.Model.Retarget — no new simulations) and re-runs the
// joint search, showing where the parallelism/placement optimum moves when
// the machine shape changes.
func JointShift() ([]JointShiftRow, error) {
	variants := hw.VariantNames()
	var out []JointShiftRow
	for _, app := range apps.BenchmarkNames() {
		for _, sys := range Systems {
			topo, err := Cell{App: app, Seed: 1, Scale: 4}.Topology()
			if err != nil {
				return nil, err
			}
			prof, err := systemProfile(sys)
			if err != nil {
				return nil, err
			}
			probeRes, err := Run(Cell{App: app, System: sys, Sockets: 4, Scale: 4, BatchSize: 1})
			if err != nil {
				return nil, err
			}
			base, err := place.Calibrate(probeRes, hw.TableIII(), prof, 1)
			if err != nil {
				return nil, fmt.Errorf("calibrate %s/%s: %w", app, sys, err)
			}
			row := JointShiftRow{App: app, System: sys}
			var basePar []int
			for vi, variant := range variants {
				spec, _ := hw.Variant(variant)
				model := base
				if vi > 0 {
					model = base.Retarget(spec)
				}
				w, err := place.NewWorkload(model, topo, prof)
				if err != nil {
					return nil, err
				}
				res, err := w.SearchJoint(jointShiftOptions(Jobs()))
				if err != nil {
					return nil, fmt.Errorf("joint shift %s/%s/%s: %w", app, sys, variant, err)
				}
				jointScreened.Add(int64(res.VectorsScreened))
				if len(res.Candidates) == 0 {
					return nil, fmt.Errorf("joint shift %s/%s/%s: no candidates", app, sys, variant)
				}
				win := res.Candidates[0]
				execs := 0
				for _, p := range win.Par {
					execs += p
				}
				row.Execs = append(row.Execs, execs)
				row.K = append(row.K, distinctSockets(win.Assign))
				if vi == 0 {
					basePar = win.Par
				} else if !intsEqual(win.Par, basePar) {
					row.Shifts++
				}
			}
			out = append(out, row)
		}
	}
	return out, nil
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// JointShiftTable renders the optimum-shift-across-specs comparison. Each
// cell is execs@k: the predicted winner's total executor count and how
// many sockets it spans.
func JointShiftTable(rows []JointShiftRow) string {
	variants := hw.VariantNames()
	var b strings.Builder
	fmt.Fprintf(&b, "Joint optimum across machine shapes (predicted, batch 1) — winner total executors @ sockets used\n")
	fmt.Fprintf(&b, "%-6s %-6s", "sys", "app")
	for _, v := range variants {
		name := v
		if name == "" {
			name = "base"
		}
		fmt.Fprintf(&b, " %8s", name)
	}
	fmt.Fprintf(&b, " %7s\n", "shifts")
	for _, sys := range Systems {
		for _, r := range rows {
			if r.System != sys {
				continue
			}
			fmt.Fprintf(&b, "%-6s %-6s", r.System, r.App)
			for i := range variants {
				fmt.Fprintf(&b, " %8s", fmt.Sprintf("%d@%d", r.Execs[i], r.K[i]))
			}
			fmt.Fprintf(&b, " %7d\n", r.Shifts)
		}
	}
	return b.String()
}
