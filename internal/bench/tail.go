package bench

import (
	"fmt"
	"strings"

	"streamscale/internal/hw"
	"streamscale/internal/sim"
	"streamscale/internal/trace"
)

// --- Extension: tail latency at the 99.99th percentile --------------------
//
// The Jet paper (PAPERS.md) argues engines must be judged at p99.99, where
// coordinated omission and sampling loss dominate what gets reported. This
// experiment family measures honest open-loop tails: every sink tuple is
// observed (LatencySampleEvery=1) into the HDR histogram (no decimation,
// bounded relative error < 0.79%), latency is recorded against the
// *intended* arrival schedule, and the worst tuple of each cell is traced
// to name the stall that put it in the tail.

// TailLoad is the offered open-loop load, as a fraction of each
// configuration's own saturated throughput. 0.8 sits at the latency knee:
// enough queueing for real tails without tipping into saturation.
const TailLoad = 0.8

// TailRow is one (app, system, ack config) line of the tail table.
type TailRow struct {
	App    string
	System string
	Ack    bool // ack tracking active (storm ships acking; flink does not)

	RateKps float64 // offered open-loop rate, k events/s
	Samples int64   // latency observations (every sink tuple)

	P50, P99, P999, P9999, Max float64 // ms

	// Worst-tuple drill-down, from the cycle-exact trace of the same cell.
	WorstRoot int64
	WorstMs   float64 // wall-clock root-to-sink span
	Dominant  string  // stall bucket name ("queue-wait", "deliver", or a hw bucket)
	// DominantMs is the dominant component summed over the tuple's whole
	// causal tree (every descendant and ack tuple). Tree branches stall
	// concurrently on different executors, so this can exceed WorstMs.
	DominantMs float64
}

// tailConfigs enumerates the engine configurations per app: Storm with its
// ack tracking (the shipped profile), Storm without acks (isolates the ack
// tree's tail contribution), and Flink (barrier-based, no acks).
type tailConfig struct {
	system string
	noAck  bool
}

var tailConfigs = []tailConfig{
	{"storm", false},
	{"storm", true},
	{"flink", false},
}

// tailCell builds the open-loop tail cell for one configuration at the
// given per-source rate (0 = closed-loop saturation probe).
func tailCell(app string, tc tailConfig, rate float64) Cell {
	c := Cell{App: app, System: tc.system, Sockets: 1, NoAck: tc.noAck}
	if rate > 0 {
		c.SourceRate = rate
		c.LatencySampleEvery = 1
	}
	return c
}

// TailStudy measures the tail table for the given apps: for each engine
// configuration it probes saturated throughput closed-loop (memo-shared
// with the single-socket study), offers TailLoad of it open-loop with
// every-tuple latency sampling, and traces the same cell (every tree
// sampled) to attribute the worst tuple's latency to its dominant stall.
func TailStudy(appNames []string) ([]TailRow, error) {
	var out []TailRow
	for _, app := range appNames {
		for _, tc := range tailConfigs {
			sat, err := Run(tailCell(app, tc, 0))
			if err != nil {
				return nil, err
			}
			rate := sat.Throughput().PerSecond() * TailLoad // per source executor; apps use one
			open := tailCell(app, tc, rate)
			res, err := Run(open)
			if err != nil {
				return nil, err
			}
			row := TailRow{
				App: app, System: tc.system, Ack: !tc.noAck && tc.system == "storm",
				RateKps: rate / 1e3,
				Samples: res.Latency.Count(),
				P50:     res.Latency.Quantile(0.5),
				P99:     res.Latency.Quantile(0.99),
				P999:    res.Latency.Quantile(0.999),
				P9999:   res.Latency.Quantile(0.9999),
				Max:     res.Latency.Max(),
			}
			if err := fillWorst(&row, open); err != nil {
				return nil, err
			}
			out = append(out, row)
		}
	}
	return out, nil
}

// fillWorst traces the cell with every tuple tree sampled and fills the
// row's worst-tuple attribution from the per-root tail records.
func fillWorst(row *TailRow, c Cell) error {
	tr := trace.New(trace.Config{SampleEvery: 1, QueueCadence: -1})
	if _, err := RunTraced(c, tr); err != nil {
		return err
	}
	tails := tr.Tails(1)
	if len(tails) == 0 {
		return fmt.Errorf("bench: tail trace of %s/%s produced no sink-reaching trees", c.App, c.System)
	}
	clock := tr.ClockHz()
	rec := tails[0]
	dom, domCycles := rec.Dominant()
	row.WorstRoot = rec.Root
	row.WorstMs = sim.Cycles(rec.E2ECycles).Millis(clock)
	row.Dominant = dom
	row.DominantMs = sim.Cycles(domCycles).Millis(clock)
	return nil
}

// TailTable renders the tail-latency table.
func TailTable(rows []TailRow) string {
	var b strings.Builder
	b.WriteString("Extension — tail latency, open-loop at 80% load, every sink tuple observed (single socket)\n")
	b.WriteString("latency vs intended arrival (coordinated-omission corrected); worst tuple traced to its dominant stall\n")
	fmt.Fprintf(&b, "%-4s %-6s %-5s %10s %9s %9s %9s %9s %9s  %s\n",
		"app", "sys", "ack", "rate k/s", "p50 ms", "p99 ms", "p99.9", "p99.99", "max", "worst tuple: dominant stall")
	for _, r := range rows {
		ack := "on"
		if !r.Ack {
			ack = "off"
		}
		fmt.Fprintf(&b, "%-4s %-6s %-5s %10.1f %9.2f %9.2f %9.2f %9.2f %9.2f  e2e %.2f ms, %s %.2f ms over tree\n",
			r.App, r.System, ack, r.RateKps, r.P50, r.P99, r.P999, r.P9999, r.Max,
			r.WorstMs, r.Dominant, r.DominantMs)
	}
	return b.String()
}

// TailSmoke is the CI gate for the tail stack. On a deliberately
// backpressured open-loop cell (offered rate 2x the saturated throughput)
// it asserts:
//
//  1. the coordinated-omission gate: corrected p99 >= uncorrected p99 —
//     forgiving backpressure stalls can only shrink reported latency;
//  2. attribution reconciles with the cycle ledger: the traced run is
//     lossless (folded == ChargedCycles, the conservation invariant), every
//     per-root execute account is a subset of the ledger, and the worst
//     tuple's attribution is nonzero with a named dominant stall;
//  3. the traced run reproduces the memoized run's latency distribution
//     bit-for-bit (tracing is a pure observer).
//
// It returns a short human-readable digest for the CI log.
func TailSmoke() (string, error) {
	base := Cell{App: "wc", System: "storm", Sockets: 1, EventScale: 0.25}
	sat, err := Run(base)
	if err != nil {
		return "", err
	}
	rate := sat.Throughput().PerSecond() * 2 // guaranteed backpressure
	cell := base
	cell.SourceRate = rate
	cell.LatencySampleEvery = 1

	corrected, err := Run(cell)
	if err != nil {
		return "", err
	}
	ablated := cell
	ablated.COUncorrected = true
	uncorrected, err := Run(ablated)
	if err != nil {
		return "", err
	}
	cp99, up99 := corrected.Latency.Quantile(0.99), uncorrected.Latency.Quantile(0.99)
	if cp99 < up99 {
		return "", fmt.Errorf("coordinated-omission gate: corrected p99 %.3f ms < uncorrected %.3f ms", cp99, up99)
	}

	tr := trace.New(trace.Config{SampleEvery: 1, QueueCadence: -1})
	traced, err := RunTraced(cell, tr)
	if err != nil {
		return "", err
	}
	if folded := tr.FoldedTotal(); folded != traced.ChargedCycles {
		return "", fmt.Errorf("tail trace not lossless: folded %d cycles vs charged %d", int64(folded), int64(traced.ChargedCycles))
	}
	tails := tr.Tails(0)
	if len(tails) == 0 {
		return "", fmt.Errorf("tail trace produced no sink-reaching trees")
	}
	var attributed sim.Cycles
	for i := range tails {
		rec := &tails[i]
		for bk := hw.Bucket(0); bk < hw.NumBuckets; bk++ {
			if rec.Buckets[bk] < 0 {
				return "", fmt.Errorf("root %d: negative %s attribution", rec.Root, bk)
			}
		}
		attributed += rec.Buckets.Total()
	}
	if attributed <= 0 || attributed > traced.ChargedCycles {
		return "", fmt.Errorf("per-root execute attribution %d cycles outside (0, charged %d]",
			int64(attributed), int64(traced.ChargedCycles))
	}
	worst := tails[0]
	dom, domCycles := worst.Dominant()
	if dom == "" || domCycles <= 0 || worst.AttributedCycles() <= 0 {
		return "", fmt.Errorf("worst tuple %d has no attributable stall", worst.Root)
	}
	for _, q := range []float64{0.5, 0.99, 0.9999, 1} {
		if a, b := traced.Latency.Quantile(q), corrected.Latency.Quantile(q); a != b {
			return "", fmt.Errorf("traced run perturbed latency: Quantile(%v) %v vs %v", q, a, b)
		}
	}

	clock := tr.ClockHz()
	return fmt.Sprintf(
		"tail-smoke ok: offered 2.0x saturated (%.1f k/s), co-gate p99 %.2f >= %.2f ms, "+
			"worst root %d %.2f ms dominated by %s (%.2f ms), "+
			"attribution %d cycles within charged %d, folded lossless",
		rate/1e3, cp99, up99,
		worst.Root, sim.Cycles(worst.E2ECycles).Millis(clock), dom, sim.Cycles(domCycles).Millis(clock),
		int64(attributed), int64(traced.ChargedCycles)), nil
}
