package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Concurrency-discipline annotations shared by atomicfield and linelayout.
// Two comment directives attach to type declarations and struct fields:
//
//	//dsp:padded
//	    On a struct type's doc comment: the struct's layout is a checked
//	    property. linelayout computes real field offsets (go/types.Sizes)
//	    and fails if two fields from different ownership domains — or two
//	    atomics — share a 64-byte cache line.
//
//	//dsp:owned(<domain>)
//	    On a struct field's doc or line comment: declares the field's
//	    single writer domain (e.g. producer, consumer, setup). On a plain
//	    field it licenses deliberately unsynchronized single-owner access
//	    (the rings' cached peer indices); on an atomic field it declares
//	    the writing side so linelayout can keep domains on separate lines.
//	    The domain "setup" conventionally marks fields written only before
//	    the structure is shared.
//
// Annotations are collected once per package in RunAnalyzers, before any
// analyzer runs; malformed or unresolvable annotations are diagnostics in
// their own right (analyzer name "directive"), so a declared invariant can
// never be skipped silently.

// structInfo is one named struct type declaration plus its concurrency
// annotations.
type structInfo struct {
	name   string
	spec   *ast.TypeSpec
	obj    *types.TypeName
	padded bool
	fields []*fieldInfo // declaration order, multi-name fields expanded
}

// fieldInfo is one struct field (blank padding fields included) with its
// ownership metadata.
type fieldInfo struct {
	owner     *structInfo
	name      string
	pos       token.Pos
	obj       *types.Var // nil if the checker recorded no object
	domain    string     // "" = undeclared
	domainPos token.Pos
	atomic    bool // field type is declared in sync/atomic
}

// hasAtomic reports whether the struct carries any atomic field: a typed
// sync/atomic field, or a plain field accessed through sync/atomic calls
// (atomicCalled, collected by atomicfield).
func (si *structInfo) hasAtomic(atomicCalled map[*types.Var]bool) bool {
	for _, fi := range si.fields {
		if fi.atomic || (fi.obj != nil && atomicCalled[fi.obj]) {
			return true
		}
	}
	return false
}

const (
	paddedDirective = "//dsp:padded"
	ownedPrefix     = "//dsp:owned"
)

// parseOwned extracts the domain from a "//dsp:owned(<domain>)" comment.
// ok is false when the comment is not an owned directive at all; malformed
// carries the complaint when it is one but is written wrong.
func parseOwned(text string) (domain string, ok bool, malformed string) {
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, ownedPrefix) {
		return "", false, ""
	}
	rest := text[len(ownedPrefix):]
	if !strings.HasPrefix(rest, "(") || !strings.HasSuffix(rest, ")") {
		return "", true, "dsp:owned needs a parenthesized domain: //dsp:owned(<domain>)"
	}
	domain = rest[1 : len(rest)-1]
	if domain == "" {
		return "", true, "dsp:owned declares an empty domain"
	}
	for _, r := range domain {
		if !(r == '_' || r == '-' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')) {
			return "", true, fmt.Sprintf("dsp:owned domain %q is not a single identifier", domain)
		}
	}
	return domain, true, ""
}

// groupHasDirective reports whether any comment in the group is exactly the
// directive.
func groupHasDirective(cg *ast.CommentGroup, directive string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if strings.TrimSpace(c.Text) == directive {
			return true
		}
	}
	return false
}

// collectStructAnnotations walks every type declaration in the package,
// records struct/field annotations on the pass, and reports malformed or
// unresolvable annotations into sink. A //dsp:padded annotation whose
// target does not resolve to a struct type is an error, not a skip: a
// declared layout invariant that silently evaporates is worse than none.
func collectStructAnnotations(p *Pass, sink *[]Diagnostic) {
	bad := func(pos token.Pos, format string, args ...any) {
		*sink = append(*sink, Diagnostic{
			Pos: p.Fset.Position(pos), Analyzer: "directive",
			Message: fmt.Sprintf(format, args...),
		})
	}
	p.fieldOf = make(map[*types.Var]*fieldInfo)
	p.structOfObj = make(map[*types.TypeName]*structInfo)
	for _, f := range p.Files {
		for _, decl := range f.AST.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				padded := groupHasDirective(ts.Doc, paddedDirective) ||
					groupHasDirective(ts.Comment, paddedDirective) ||
					(len(gd.Specs) == 1 && groupHasDirective(gd.Doc, paddedDirective))
				st, isStruct := ts.Type.(*ast.StructType)
				if !isStruct {
					if padded {
						bad(ts.Pos(), "//dsp:padded on %s, which is not a struct type; only struct layouts can be checked", ts.Name.Name)
					}
					continue
				}
				obj, _ := p.Info.Defs[ts.Name].(*types.TypeName)
				if obj == nil {
					if padded {
						bad(ts.Pos(), "cannot resolve the type of //dsp:padded struct %s", ts.Name.Name)
					}
					continue
				}
				si := &structInfo{name: ts.Name.Name, spec: ts, obj: obj, padded: padded}
				p.collectFields(si, st, bad)
				p.structs = append(p.structs, si)
				p.structOfObj[obj] = si
			}
		}
	}
}

// collectFields expands the struct's AST fields (multi-name fields become
// one entry per name, matching go/types field order) and attaches each
// field's //dsp:owned domain.
func (p *Pass) collectFields(si *structInfo, st *ast.StructType, bad func(token.Pos, string, ...any)) {
	for _, f := range st.Fields.List {
		domain, domainPos := "", token.NoPos
		for _, cg := range []*ast.CommentGroup{f.Doc, f.Comment} {
			if cg == nil {
				continue
			}
			for _, c := range cg.List {
				d, isOwned, malformed := parseOwned(c.Text)
				if !isOwned {
					continue
				}
				if malformed != "" {
					bad(c.Pos(), "%s", malformed)
					continue
				}
				domain, domainPos = d, c.Pos()
			}
		}
		add := func(name string, pos token.Pos, obj *types.Var) {
			fi := &fieldInfo{
				owner: si, name: name, pos: pos, obj: obj,
				domain: domain, domainPos: domainPos,
				atomic: obj != nil && isAtomicType(obj.Type()),
			}
			si.fields = append(si.fields, fi)
			if obj != nil {
				p.fieldOf[obj] = fi
			}
		}
		if len(f.Names) == 0 {
			// Embedded field: named after its type.
			name := embeddedFieldName(f.Type)
			var obj *types.Var
			ast.Inspect(f.Type, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok && id.Name == name {
					if v, isVar := p.Info.Uses[id].(*types.Var); isVar && v.IsField() {
						obj = v
					}
				}
				return true
			})
			add(name, f.Type.Pos(), obj)
			continue
		}
		for _, n := range f.Names {
			obj, _ := p.Info.Defs[n].(*types.Var)
			add(n.Name, n.Pos(), obj)
		}
	}
}

// embeddedFieldName returns the implicit field name of an embedded type
// expression (the final identifier, stars and qualifiers stripped).
func embeddedFieldName(e ast.Expr) string {
	for {
		switch x := e.(type) {
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.IndexListExpr:
			e = x.X
		case *ast.SelectorExpr:
			return x.Sel.Name
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}

// isAtomicType reports whether t is one of sync/atomic's typed atomics
// (atomic.Int64, atomic.Uint64, atomic.Bool, atomic.Pointer[T], ...).
func isAtomicType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// fieldVar resolves sel to the struct field it selects, or nil.
func (p *Pass) fieldVar(sel *ast.SelectorExpr) *types.Var {
	if v, ok := p.Info.Uses[sel.Sel].(*types.Var); ok && v.IsField() {
		return v
	}
	return nil
}

// receiverStruct resolves a method declaration's receiver base type to the
// package-local struct it names, or nil.
func (p *Pass) receiverStruct(fn *ast.FuncDecl) *structInfo {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return nil
	}
	e := fn.Recv.List[0].Type
	for {
		switch x := e.(type) {
		case *ast.StarExpr:
			e = x.X
			continue
		case *ast.IndexExpr:
			e = x.X
			continue
		case *ast.IndexListExpr:
			e = x.X
			continue
		case *ast.Ident:
			if tn, ok := p.Info.Uses[x].(*types.TypeName); ok {
				return p.structOfObj[tn]
			}
			return nil
		default:
			return nil
		}
	}
}
