package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc enforces zero-allocation discipline in functions annotated
// //dsp:hotpath — the simulator's per-event code (the kernel event heap,
// cache probes, the line-version table) where a single allocation per call
// multiplies into millions per run and shows up directly in wall time.
// Forbidden constructs:
//
//   - make / new
//   - append that may grow: any append whose result is not assigned back
//     to its own first argument (self-append reuses capacity in steady
//     state; anything else escapes)
//   - slice, map, and address-taken composite literals
//   - function literals (closure capture allocates)
//   - interface conversions of non-pointer values (boxing)
//   - fmt.* calls
//   - string concatenation
//
// Calls to ordinary functions are allowed — amortized growth belongs in a
// cold helper (e.g. lineVerTable.grow), which keeps the hot body honest.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "forbid allocating constructs in //dsp:hotpath functions",
	Run:  runHotAlloc,
}

func runHotAlloc(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.AST.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !FuncHasDirective(fn, "//dsp:hotpath") {
				continue
			}
			p.checkHotFunc(fn)
		}
	}
}

func (p *Pass) checkHotFunc(fn *ast.FuncDecl) {
	selfAppends := p.selfAppends(fn.Body)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			p.checkHotCall(x, selfAppends)
		case *ast.FuncLit:
			p.Report(x.Pos(), "closure literal in hot path allocates; hoist it or pass a method value from a cold caller")
		case *ast.CompositeLit:
			switch p.Info.TypeOf(x).Underlying().(type) {
			case *types.Slice, *types.Map:
				p.Report(x.Pos(), "%s literal in hot path allocates", typeKind(p.Info.TypeOf(x)))
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := x.X.(*ast.CompositeLit); ok {
					p.Report(x.Pos(), "address-taken composite literal in hot path allocates")
				}
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isString(p.Info.TypeOf(x)) {
				p.Report(x.Pos(), "string concatenation in hot path allocates")
			}
		case *ast.AssignStmt:
			if x.Tok == token.ADD_ASSIGN && len(x.Lhs) == 1 && isString(p.Info.TypeOf(x.Lhs[0])) {
				p.Report(x.Pos(), "string concatenation in hot path allocates")
			}
			p.checkBoxedAssign(x)
		case *ast.ValueSpec:
			for i, v := range x.Values {
				if i < len(x.Names) {
					p.checkBoxed(v, p.Info.TypeOf(x.Names[i]))
				}
			}
		case *ast.ReturnStmt:
			p.checkBoxedReturn(fn, x)
		}
		return true
	})
}

// selfAppends collects append calls of the shape `x = append(x, …)`, the
// steady-state-zero-alloc idiom the heap and slab use: once warm, the slice
// owns enough capacity and append only writes.
func (p *Pass) selfAppends(body *ast.BlockStmt) map[*ast.CallExpr]bool {
	ok := make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		asg, isAsg := n.(*ast.AssignStmt)
		if !isAsg || asg.Tok != token.ASSIGN || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
			return true
		}
		call, isCall := asg.Rhs[0].(*ast.CallExpr)
		if !isCall || !p.isBuiltin(call.Fun, "append") || len(call.Args) == 0 {
			return true
		}
		if types.ExprString(asg.Lhs[0]) == types.ExprString(call.Args[0]) {
			ok[call] = true
		}
		return true
	})
	return ok
}

func (p *Pass) checkHotCall(call *ast.CallExpr, selfAppends map[*ast.CallExpr]bool) {
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make", "new":
				p.Report(call.Pos(), "%s in hot path allocates", id.Name)
			case "append":
				if !selfAppends[call] {
					p.Report(call.Pos(), "append whose result is not assigned back to its argument may grow and allocate")
				}
			}
			return
		}
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if path, ok := p.selectorPackage(sel); ok && path == "fmt" {
			p.Report(call.Pos(), "fmt.%s in hot path allocates (and formats); move it behind a cold error helper", sel.Sel.Name)
			return
		}
	}
	// Explicit conversion to an interface type boxes its operand.
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			p.checkBoxed(call.Args[0], tv.Type)
		}
		return
	}
	// Implicit boxing at call boundaries: concrete non-pointer arguments
	// passed to interface parameters.
	sig, ok := p.Info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // forwarding a slice, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		p.checkBoxed(arg, pt)
	}
}

func (p *Pass) checkBoxedAssign(asg *ast.AssignStmt) {
	if len(asg.Lhs) != len(asg.Rhs) {
		return
	}
	for i := range asg.Lhs {
		if lt := p.Info.TypeOf(asg.Lhs[i]); lt != nil {
			p.checkBoxed(asg.Rhs[i], lt)
		}
	}
}

func (p *Pass) checkBoxedReturn(fn *ast.FuncDecl, ret *ast.ReturnStmt) {
	results := fn.Type.Results
	if results == nil {
		return
	}
	var resultTypes []types.Type
	for _, field := range results.List {
		n := max(1, len(field.Names))
		for i := 0; i < n; i++ {
			resultTypes = append(resultTypes, p.Info.TypeOf(field.Type))
		}
	}
	if len(ret.Results) != len(resultTypes) {
		return
	}
	for i, r := range ret.Results {
		p.checkBoxed(r, resultTypes[i])
	}
}

// checkBoxed reports e when assigning it to dst converts a concrete
// non-pointer value to an interface — the allocation Go escape analysis
// rarely removes.
func (p *Pass) checkBoxed(e ast.Expr, dst types.Type) {
	if dst == nil {
		return
	}
	if _, isIface := dst.Underlying().(*types.Interface); !isIface {
		return
	}
	src := p.Info.TypeOf(e)
	if src == nil {
		return
	}
	switch src.Underlying().(type) {
	case *types.Interface, *types.Pointer:
		return // already boxed, or a pointer (stored directly, no alloc)
	case *types.Basic:
		if src.Underlying().(*types.Basic).Kind() == types.UntypedNil {
			return
		}
	}
	p.Report(e.Pos(), "interface conversion of non-pointer %s value in hot path allocates", src.String())
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func typeKind(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	}
	return "composite"
}
