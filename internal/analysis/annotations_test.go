package analysis_test

import (
	"strings"
	"testing"

	"streamscale/internal/analysis"
)

// TestUnresolvableAnnotationIsError pins the no-silent-skip contract: an
// annotation whose target cannot be checked (a //dsp:padded non-struct, a
// //dsp:padded generic whose layout int64 instantiation cannot witness)
// must surface as a diagnostic, never as a skipped check — a declared
// invariant that silently evaporates is worse than none.
func TestUnresolvableAnnotationIsError(t *testing.T) {
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		dir  string
		want string
	}{
		{"testdata/src/annotation/pos", "//dsp:padded on counter, which is not a struct type"},
		{"testdata/src/linelayout/pos", "cannot resolve the layout of //dsp:padded generic struct badGeneric"},
	}
	for _, tc := range cases {
		pkg, err := loader.LoadDir(tc.dir, loader.ModPath+"/internal/analysis/"+tc.dir)
		if err != nil {
			t.Fatalf("loading %s: %v", tc.dir, err)
		}
		diags := analysis.RunAnalyzers(pkg, analysis.All())
		found := false
		for _, d := range diags {
			if strings.Contains(d.Message, tc.want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: no diagnostic containing %q; got %v", tc.dir, tc.want, diags)
		}
	}
}
