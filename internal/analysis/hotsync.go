package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotSync extends the //dsp:hotpath contract from allocation-freedom
// (hotalloc) to synchronization purity. The native runtime's hot path —
// ring Push/Pop, the executor loop, the Waiter fast path — exists to
// measure message-passing cost, so it must not smuggle in the very
// mechanisms it replaced:
//
//   - no channel sends, receives, or closes (the ring is the channel)
//   - no sync.Mutex/RWMutex lock calls, no WaitGroup.Wait, no Cond
//     blocking — hot-path synchronization is sync/atomic plus the
//     ring protocol
//   - no wall-clock reads (time.Now/Since/Until); a clock read in a
//     per-tuple path is itself a measurable cost. //dsplint:wallclock on
//     the function marks deliberate measurement points (the coarse Born
//     stamp, the sampled sink latency read).
//   - spin loops must yield: a loop whose termination depends on another
//     goroutine's write (an unbounded loop polling atomics or Try* calls,
//     or a loop condition that polls them) must call runtime.Gosched,
//     time.Sleep, or park on a waiter between retries, or it burns a core
//     exactly when the system is most oversubscribed.
//
// Bounded scans (a for loop with a pure condition, e.g. draining MPSC
// lanes round-robin) and pointer-chasing loops without shared polling are
// not spin loops and pass unflagged.
var HotSync = &Analyzer{
	Name: "hotsync",
	Doc:  "forbid blocking synchronization, wall-clock reads, and unyielding spin loops in //dsp:hotpath functions",
	Run:  runHotSync,
}

// blockingSyncMethods are the sync package methods that block or take a
// lock; any of them in a hot path defeats the lock-free design.
var blockingSyncMethods = map[string]bool{
	"Lock": true, "Unlock": true, "RLock": true, "RUnlock": true,
	"TryLock": true, "TryRLock": true, "Wait": true,
}

func runHotSync(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.AST.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !FuncHasDirective(fn, "//dsp:hotpath") {
				continue
			}
			wallclock := FuncHasDirective(fn, "//dsplint:wallclock")
			p.checkHotSyncFunc(fn, wallclock)
		}
	}
}

func (p *Pass) checkHotSyncFunc(fn *ast.FuncDecl, wallclock bool) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SendStmt:
			p.Report(x.Pos(), "channel send in hot path; the lock-free ring is the hot-path transport, channels are for setup and teardown")
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				p.Report(x.Pos(), "channel receive in hot path; park on a Waiter from a cold caller instead")
			}
		case *ast.CallExpr:
			p.checkHotSyncCall(x, wallclock)
		case *ast.ForStmt:
			p.checkSpinLoop(x)
		}
		return true
	})
}

func (p *Pass) checkHotSyncCall(call *ast.CallExpr, wallclock bool) {
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "close" {
		if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin {
			p.Report(call.Pos(), "close of a channel in hot path; lifecycle transitions belong to cold shutdown code")
		}
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	if path, ok := p.selectorPackage(sel); ok && path == "time" && wallClockFuncs[sel.Sel.Name] && !wallclock {
		p.Report(call.Pos(),
			"time.%s in hot path; a per-tuple clock read is itself a measurable cost (annotate the function //dsplint:wallclock if this is a deliberate measurement point)",
			sel.Sel.Name)
		return
	}
	if s := p.Info.Selections[sel]; s != nil {
		if m, ok := s.Obj().(*types.Func); ok && m.Pkg() != nil && m.Pkg().Path() == "sync" && blockingSyncMethods[m.Name()] {
			p.Report(call.Pos(),
				"sync.%s.%s in hot path; hot-path synchronization must go through sync/atomic and the ring protocol",
				recvTypeName(m), m.Name())
		}
	}
}

// recvTypeName names a method's receiver type (pointer stripped).
func recvTypeName(m *types.Func) string {
	sig, ok := m.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "?"
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}

// checkSpinLoop flags loops that wait on another goroutine without
// yielding. Two shapes qualify as spinning: an unbounded `for {}` whose
// body polls shared state (atomics or Try* calls), and a conditioned loop
// whose condition itself polls shared state. Either must yield or park in
// the body.
func (p *Pass) checkSpinLoop(loop *ast.ForStmt) {
	spins := false
	if loop.Cond == nil {
		spins = p.pollsShared(loop.Body)
	} else {
		spins = p.pollsShared(loop.Cond)
	}
	if spins && !p.yields(loop.Body) {
		p.Report(loop.Pos(),
			"spin loop in hot path never yields; call runtime.Gosched, time.Sleep, or park on a Waiter between retries")
	}
}

// pollsShared reports whether the node contains a read of cross-goroutine
// state: a sync/atomic package call, a typed-atomic method call, or a
// call to a Try*-named function (the rings' non-blocking operations).
func (p *Pass) pollsShared(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if strings.HasPrefix(fun.Name, "Try") {
				found = true
			}
		case *ast.SelectorExpr:
			if strings.HasPrefix(fun.Sel.Name, "Try") {
				found = true
				break
			}
			if path, ok := p.selectorPackage(fun); ok && path == "sync/atomic" {
				found = true
				break
			}
			if s := p.Info.Selections[fun]; s != nil {
				if m, ok := s.Obj().(*types.Func); ok && m.Pkg() != nil && m.Pkg().Path() == "sync/atomic" {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// yields reports whether the body gives the processor away on some path:
// runtime.Gosched, time.Sleep, or a park/Park call (the Waiter protocol).
func (p *Pass) yields(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if fun.Name == "park" || fun.Name == "Park" {
				found = true
			}
		case *ast.SelectorExpr:
			name := fun.Sel.Name
			if name == "park" || name == "Park" {
				found = true
				break
			}
			if path, ok := p.selectorPackage(fun); ok {
				if (path == "runtime" && name == "Gosched") || (path == "time" && name == "Sleep") {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
