package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

// BucketSwitch requires every `switch` over hw.Bucket to name all buckets
// explicitly. The Table II accounting only works because each cycle lands
// in exactly one bucket; when a new bucket is added, every switch that
// classifies buckets must be revisited, and a default clause would let it
// slip through silently. A default clause is still allowed (e.g. to panic
// on out-of-range values) but does not substitute for missing cases.
var BucketSwitch = &Analyzer{
	Name: "bucketswitch",
	Doc:  "require switches over hw.Bucket to cover every bucket constant",
	Run:  runBucketSwitch,
}

func runBucketSwitch(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f.AST, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			tagType := p.Info.TypeOf(sw.Tag)
			named, ok := namedIn(tagType, "Bucket")
			if !ok {
				return true
			}
			p.checkBucketSwitch(sw, named)
			return true
		})
	}
}

func (p *Pass) checkBucketSwitch(sw *ast.SwitchStmt, bucket *types.Named) {
	all, numBuckets := bucketConstants(bucket)
	if numBuckets == 0 {
		return
	}
	covered := make(map[int64]bool)
	for _, stmt := range sw.Body.List {
		clause := stmt.(*ast.CaseClause)
		for _, e := range clause.List {
			if tv, ok := p.Info.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.Int {
				if v, exact := constant.Int64Val(tv.Value); exact {
					covered[v] = true
				}
			}
		}
	}
	var missing []string
	for v := int64(0); v < numBuckets; v++ {
		if !covered[v] {
			name := all[v]
			if name == "" {
				name = fmt.Sprintf("Bucket(%d)", v)
			}
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		p.Report(sw.Pos(), "switch over hw.Bucket is not exhaustive: missing %s (NumBuckets = %d)",
			strings.Join(missing, ", "), numBuckets)
	}
}

// bucketConstants returns the bucket constants declared in the Bucket
// type's package (value -> name) and the value of NumBuckets.
func bucketConstants(bucket *types.Named) (map[int64]string, int64) {
	pkg := bucket.Obj().Pkg()
	if pkg == nil {
		return nil, 0
	}
	names := make(map[int64]string)
	var numBuckets int64
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), bucket) {
			continue
		}
		v, exact := constant.Int64Val(c.Val())
		if !exact {
			continue
		}
		if name == "NumBuckets" {
			numBuckets = v
			continue
		}
		names[v] = name
	}
	return names, numBuckets
}
