package pos

import "sync/atomic"

// badAtomics declares a checked layout but leaves both shared indices on
// line 0 — producer and consumer each hammer their own index, so the line
// ping-pongs between their cores.
//
//dsp:padded
type badAtomics struct {
	head atomic.Uint64
	tail atomic.Uint64
}

// badDomains pads, but not enough: a lands at offset 0 and b at offset 56,
// both on line 0, and their declared owners differ.
//
//dsp:padded
type badDomains struct {
	a uint64 //dsp:owned(producer)
	_ [48]byte
	b uint64 //dsp:owned(consumer)
}

// badGeneric's layout cannot be witnessed with int64 type arguments — the
// constraint rejects them — so the declared invariant is reported rather
// than silently skipped.
//
//dsp:padded
type badGeneric[T interface{ ~string }] struct {
	v T
}
