package neg

import "sync/atomic"

// goodRing is the SPSC shape: each ownership domain (shared index plus its
// cached peer copy) starts on its own 64-byte line, with a trailing pad so
// a neighboring allocation cannot share the producer line.
//
//dsp:padded
type goodRing struct {
	buf []int // 24-byte slice header, read-mostly

	_          [40]byte
	head       atomic.Uint64 //dsp:owned(consumer)
	cachedTail uint64        //dsp:owned(consumer)
	_          [48]byte
	tail       atomic.Uint64 //dsp:owned(producer)
	cachedHead uint64        //dsp:owned(producer)
	_          [48]byte
}

// genericRing proves a generic struct can carry a checked layout: the
// slice header's size does not depend on T, so instantiating every type
// parameter as int64 witnesses the real offsets.
//
//dsp:padded
type genericRing[T any] struct {
	buf []T

	_    [40]byte
	head atomic.Uint64 //dsp:owned(consumer)
	_    [56]byte
	tail atomic.Uint64 //dsp:owned(producer)
	_    [56]byte
}
