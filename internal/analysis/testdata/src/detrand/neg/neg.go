// Package fixture exercises detrand-clean code: explicitly seeded
// generators, annotated wall-time measurement, and a justified suppression.
package fixture

import (
	"math/rand"
	"time"
)

// Constructors are how seeded generators are made; they are fine.
var source = rand.New(rand.NewSource(1))

func pick(n int) int {
	return source.Intn(n)
}

// harness reports real elapsed seconds on purpose.
//
//dsplint:wallclock
func harness() time.Duration {
	start := time.Now()
	work()
	return time.Since(start)
}

func work() {}

func suppressed() time.Time {
	//dsplint:ignore detrand fixture demonstrating a justified suppression
	return time.Now()
}
