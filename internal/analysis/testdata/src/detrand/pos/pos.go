// Package fixture exercises detrand violations: global math/rand source
// calls and wall-clock reads in simulation-deterministic code.
package fixture

import (
	"math/rand"
	"time"
)

// Package-level initializers run before any seeding discipline can apply.
var jitter = rand.Int63()

func pick(n int) int {
	return rand.Intn(n)
}

func sample() float64 {
	x := rand.Float64()
	return x
}

func elapsed() time.Duration {
	start := time.Now()
	work()
	return time.Since(start)
}

func work() {}

// Malformed suppression directives are diagnostics in their own right.
func malformed() int {
	a := rand.Int() //dsplint:ignore
	b := rand.Int() //dsplint:ignore nosuchanalyzer because
	c := rand.Int() //dsplint:ignore detrand
	return a + b + c
}
