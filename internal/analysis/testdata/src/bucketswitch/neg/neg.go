// Package fixture exercises switches bucketswitch must accept: exhaustive
// bucket switches and switches over unrelated types.
package fixture

import "streamscale/internal/hw"

func classify(b hw.Bucket) string {
	switch b {
	case hw.TC:
		return "computation"
	case hw.TBr:
		return "bad-speculation"
	case hw.FeITLB, hw.FeL1I, hw.FeILD, hw.FeIDQ:
		return "front-end"
	case hw.BeDTLB, hw.BeL1D, hw.BeL2, hw.BeLLCLocal, hw.BeLLCRemote:
		return "back-end"
	default:
		return "out of range"
	}
}

// Switches over other types are none of bucketswitch's business.
func other(n int) int {
	switch n {
	case 1:
		return 10
	}
	switch {
	case n > 0:
		return 1
	}
	return 0
}
