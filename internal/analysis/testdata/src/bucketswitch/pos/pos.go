// Package fixture exercises bucketswitch violations: non-exhaustive
// switches over hw.Bucket, with and without a default clause.
package fixture

import "streamscale/internal/hw"

func topLevel(b hw.Bucket) int {
	switch b {
	case hw.TC:
		return 0
	case hw.TBr:
		return 1
	}
	return 2
}

// A default clause does not substitute for the missing cases.
func stallKind(b hw.Bucket) string {
	switch b {
	case hw.FeITLB, hw.FeL1I, hw.FeILD, hw.FeIDQ:
		return "front-end"
	case hw.BeDTLB, hw.BeL1D, hw.BeL2:
		return "back-end"
	default:
		return "other"
	}
}
