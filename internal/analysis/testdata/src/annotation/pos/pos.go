package pos

// counter declares a checked layout, but only struct layouts can be
// checked.
//
//dsp:padded
type counter int64

// plain exercises every malformed //dsp:owned spelling.
type plain struct {
	a int //dsp:owned()
	b int //dsp:owned
	c int //dsp:owned(two words)
}
