package neg

import "sync/atomic"

// header shows the annotations used correctly: //dsp:owned on a typed
// atomic declares the writing side (not a contradiction), a plain owned
// field is fine when nothing touches it atomically, and the layout keeps
// the two domains on separate lines.
//
//dsp:padded
type header struct {
	seq atomic.Uint64 //dsp:owned(writer)
	_   [56]byte
	rd  uint64 //dsp:owned(reader)
	_   [56]byte
}

func (h *header) advance() { h.seq.Add(1) }

func (h *header) observe() { h.rd = h.seq.Load() }
