// Package fixture exercises cyclecharge violations: writes to per-bucket
// cycle counters outside the CostVec.Add/AddVec charging API.
package fixture

import (
	"streamscale/internal/hw"
	"streamscale/internal/sim"
)

func charge(out *hw.CostVec, c sim.Cycles) {
	out[hw.TC] += c
	out[hw.TBr] = c
	out[hw.FeILD]++
}

func reset(v hw.CostVec, out *hw.CostVec) hw.CostVec {
	v = hw.CostVec{}
	*out = hw.CostVec{}
	return v
}
