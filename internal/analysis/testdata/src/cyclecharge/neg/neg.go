// Package fixture exercises cycle accounting cyclecharge must accept:
// charging through the API, fresh declarations, reads, pointer rebinding,
// and a justified suppression.
package fixture

import (
	"streamscale/internal/hw"
	"streamscale/internal/sim"
)

func charge(out *hw.CostVec, c sim.Cycles) sim.Cycles {
	out.Add(hw.TC, c)
	var local hw.CostVec
	local.Add(hw.BeL1D, c)
	out.AddVec(&local)
	fresh := hw.CostVec{}
	fresh.Add(hw.TBr, 1)
	total := fresh[hw.TBr] + out[hw.TC] // reads are fine
	return total
}

func rebind(a, b *hw.CostVec) *hw.CostVec {
	v := a
	v = b // rebinding a pointer, not writing counters
	return v
}

func reset(v *hw.CostVec) {
	//dsplint:ignore cyclecharge fixture demonstrating a justified reset
	*v = hw.CostVec{}
}
