package pos

import (
	"sync"
	"sync/atomic"
	"time"
)

type state struct {
	mu   sync.Mutex
	flag atomic.Bool
	ch   chan int
}

// locks takes a mutex in a hot path.
//
//dsp:hotpath
func (s *state) locks() {
	s.mu.Lock()
	s.mu.Unlock()
}

// channels sends, receives, and closes in a hot path.
//
//dsp:hotpath
func (s *state) channels() int {
	s.ch <- 1
	v := <-s.ch
	close(s.ch)
	return v
}

// clock reads wall time per call without declaring //dsplint:wallclock.
//
//dsp:hotpath
func (s *state) clock() int64 { return time.Now().UnixNano() }

// spinBody is an unbounded loop polling shared state with no yield.
//
//dsp:hotpath
func (s *state) spinBody() {
	for {
		if s.flag.Load() {
			return
		}
	}
}

// spinCond polls shared state in its condition with no yield.
//
//dsp:hotpath
func (s *state) spinCond() {
	for !s.flag.Load() {
	}
}
