package neg

import (
	"runtime"
	"sync/atomic"
	"time"
)

type q struct {
	flag atomic.Bool
	// lanes is fixed before the q is shared.
	lanes []int //dsp:owned(setup)
}

// drain is a bounded scan, not a spin: the loop condition is pure, so the
// loop terminates without any other goroutine's help even though the body
// polls (the MPSC round-robin drain shape).
//
//dsp:hotpath
func (s *q) drain() int {
	n := 0
	for i := 0; i < len(s.lanes); i++ {
		if s.TryGet(i) {
			n++
		}
	}
	return n
}

// TryGet is the non-blocking poll drain and the spinners call.
func (s *q) TryGet(i int) bool { return s.lanes[i] != 0 }

// spinYield polls shared state but yields the processor between retries.
//
//dsp:hotpath
func (s *q) spinYield() {
	for !s.flag.Load() {
		runtime.Gosched()
	}
}

// spinPark polls shared state but parks between retries (the Waiter shape).
//
//dsp:hotpath
func (s *q) spinPark() {
	for {
		if s.flag.Load() {
			return
		}
		s.park()
	}
}

func (s *q) park() {}

// stamp reads the clock deliberately: a declared measurement point.
//
//dsp:hotpath
//dsplint:wallclock
func stamp() int64 { return time.Now().UnixNano() }

// coldSetup is not a hot path; channels are the right tool off it.
func coldSetup(ch chan int) {
	ch <- 1
	close(ch)
}
