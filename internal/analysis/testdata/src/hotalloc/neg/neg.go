// Package fixture exercises hot-path code hotalloc must accept: integer
// work, self-appends, pointer interface values, cold helpers, and a
// justified suppression.
package fixture

type sink interface{ consume() }

type payload struct{ n int }

func (*payload) consume() {}

func take(v any) { _ = v }

type ring struct {
	slots []int
	free  []int32
}

// push reuses capacity via the self-append idiom; in steady state the
// slices never grow.
//
//dsp:hotpath
func (r *ring) push(v int) {
	r.slots = append(r.slots, v)
	r.free = append(r.free, int32(v))
	n := v*2 + len(r.slots)
	if n > 0 {
		r.slots[0] = n
	}
}

// pointers box without allocating; untyped nil is interface zero.
//
//dsp:hotpath
func (r *ring) forward(pl *payload) sink {
	take(pl)
	take(nil)
	var s sink = pl
	return s
}

// Cold helpers may allocate freely; only annotated functions are hot.
func (r *ring) grow() {
	r.slots = make([]int, 2*len(r.slots))
}

// A justified suppression for a deliberate one-off allocation.
//
//dsp:hotpath
func (r *ring) lazyInit() {
	if r.slots == nil {
		r.slots = make([]int, 0, 64) //dsplint:ignore hotalloc one-time lazy initialization, amortized over the run
	}
}
