// Package fixture exercises hotalloc violations: allocating constructs
// inside a //dsp:hotpath function.
package fixture

import "fmt"

type sink interface{ consume() }

type payload struct{ n int }

func (payload) consume() {}

func take(v any) { _ = v }

// step is a hot path that commits every forbidden construct.
//
//dsp:hotpath
func step(buf []int, scratch []int, label string, pl payload) ([]int, string) {
	tmp := make([]int, 4)
	ptr := new(int)
	buf = append(buf, scratch...)
	grown := append(scratch, 1)
	cb := func() int { return *ptr }
	lit := []int{1, 2, 3}
	table := map[int]int{1: 2}
	boxed := any(pl.n)
	take(pl.n)
	var s sink = pl
	s.consume()
	msg := fmt.Sprintf("step %s", label)
	label = label + "!"
	label += "?"
	addr := &payload{n: cb()}
	_ = addr
	_ = boxed
	_ = grown
	_ = lit
	_ = table
	_ = tmp
	return buf, msg
}

// boxedReturn boxes its concrete result into an interface return value.
//
//dsp:hotpath
func boxedReturn(pl payload) sink {
	return pl
}
