package pos

import "sync/atomic"

// counter mixes atomic and plain access on the same plain field: read()
// races with bump() (rule 1).
type counter struct {
	n int64
}

func (c *counter) bump() { atomic.AddInt64(&c.n, 1) }

func (c *counter) read() int64 { return c.n }

// ringish carries a typed atomic, which makes it a lock-free structure;
// the cached index it writes in a method must declare its single writer
// and does not (rule 2).
type ringish struct {
	head   atomic.Uint64
	cached uint64
}

func (r *ringish) pop() uint64 {
	r.cached = r.head.Load()
	return r.cached
}

// confused declares single-owner access to a field the same package also
// touches through sync/atomic — the two claims contradict (rule 3).
type confused struct {
	flag int32 //dsp:owned(writer)
}

func (c *confused) set() { atomic.StoreInt32(&c.flag, 1) }
