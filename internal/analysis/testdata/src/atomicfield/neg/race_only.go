//go:build race

package neg

// raceDebugPeek reads stat.hits without synchronization — a rule-1
// violation if this file were analyzed. It is not: the lint loader
// evaluates build constraints with the "race" tag off (matching a normal
// non-race build), so race-only debug helpers never pollute lint results.
// This fixture pins that loader path: if constraint handling regresses and
// this file is loaded, the neg package grows a diagnostic and the golden
// test fails.
func raceDebugPeek(s *stat) int64 { return s.hits }
