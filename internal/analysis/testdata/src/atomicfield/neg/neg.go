package neg

import "sync/atomic"

// lane is the blessed shape: a typed atomic for the shared index and a
// declared owner for the deliberately unsynchronized cached copy.
type lane struct {
	head   atomic.Uint64
	cached uint64 //dsp:owned(consumer)
}

// newLane writes plain fields at construction time, before the lane is
// shared — package functions are exempt from the owned-write rule.
func newLane() *lane {
	l := &lane{}
	l.cached = 0
	return l
}

func (l *lane) pop() bool {
	h := l.head.Load()
	if h == l.cached {
		return false
	}
	l.cached = h
	return true
}

// stat uses old-style atomics consistently: every access to hits goes
// through sync/atomic, so no plain access exists to race with.
type stat struct {
	hits int64
}

func (s *stat) hit()        { atomic.AddInt64(&s.hits, 1) }
func (s *stat) load() int64 { return atomic.LoadInt64(&s.hits) }
