// Package fixture exercises order-insensitive map iteration that maporder
// must accept without annotation.
package fixture

import "sort"

// Integer accumulation is commutative and associative.
func count(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// Flag-setting with a constant plus break: same outcome any order.
func hasNegative(m map[string]int) bool {
	found := false
	for _, v := range m {
		if v < 0 {
			found = true
			break
		}
	}
	return found
}

// Deleting visited keys touches each entry exactly once.
func clearZero(m map[string]int) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
}

// The collect-keys-then-sort idiom, in both := and = forms.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedKeysAssigned(m map[string]int) []string {
	var keys []string
	var k string
	for k = range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// A justified suppression for a genuinely order-sensitive loop.
func suppressed(m map[string]float64) float64 {
	var sum float64
	//dsplint:ignore maporder fixture demonstrating a justified suppression
	for _, v := range m {
		sum += v
	}
	return sum
}
