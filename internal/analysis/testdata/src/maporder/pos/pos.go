// Package fixture exercises maporder violations: map iteration whose
// effects depend on Go's randomized visit order.
package fixture

// Float addition is not associative: the low bits depend on visit order.
func fuse(weights map[string]float64) float64 {
	var sum float64
	for _, w := range weights {
		sum += w
	}
	return sum
}

// Appending values produces a slice in visit order, never sorted.
func values(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v)
	}
	return out
}

// Calling an arbitrary function per entry is order-observable.
func emit(m map[string]int, f func(string, int)) {
	for k, v := range m {
		f(k, v)
	}
}

// Non-constant assignment keeps only the last-visited value.
func last(m map[string]int) int {
	var x int
	for _, v := range m {
		x = v + 1
	}
	return x
}
