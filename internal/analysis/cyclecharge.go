package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CycleCharge confines writes to the per-bucket cycle counters (hw.CostVec
// elements) to the designated charging API — CostVec.Add and
// CostVec.AddVec in the hardware package. Every simulated cycle must be
// charged to exactly one Table II bucket exactly once; a stray `v[b] += c`
// (or a wholesale `costs = hw.CostVec{}`) at a call site can double-charge
// or drop cycles without any test noticing until the breakdown drifts.
var CycleCharge = &Analyzer{
	Name: "cyclecharge",
	Doc:  "confine per-bucket cycle counter writes to CostVec.Add/AddVec",
	Run:  runCycleCharge,
}

// chargingAPI names the CostVec methods allowed to mutate bucket counters.
var chargingAPI = map[string]bool{"Add": true, "AddVec": true}

func runCycleCharge(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.AST.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if p.isChargingAPI(fn) {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.AssignStmt:
					p.checkCostVecAssign(x)
				case *ast.IncDecStmt:
					if p.isCostVecElem(x.X) {
						p.Report(x.Pos(), "direct write to a per-bucket cycle counter; charge through CostVec.Add/AddVec")
					}
				}
				return true
			})
		}
	}
}

// isChargingAPI reports whether fn is one of the designated CostVec
// charging methods declared in the hardware package.
func (p *Pass) isChargingAPI(fn *ast.FuncDecl) bool {
	if fn.Recv == nil || len(fn.Recv.List) != 1 || !chargingAPI[fn.Name.Name] {
		return false
	}
	if !hwPath(p.Path) {
		return false
	}
	_, ok := namedIn(p.Info.TypeOf(fn.Recv.List[0].Type), "CostVec")
	return ok
}

func (p *Pass) checkCostVecAssign(asg *ast.AssignStmt) {
	for _, lhs := range asg.Lhs {
		if p.isCostVecElem(lhs) {
			p.Report(lhs.Pos(), "direct write to a per-bucket cycle counter; charge through CostVec.Add/AddVec")
			continue
		}
		// Overwriting a whole existing CostVec drops every cycle it held.
		// Declaring a fresh one (:=, var) is fine — it starts at zero.
		if asg.Tok == token.ASSIGN && !isBlank(lhs) {
			t := p.Info.TypeOf(lhs)
			if _, isPtr := t.(*types.Pointer); isPtr {
				continue // rebinding a *CostVec pointer, not writing counters
			}
			if _, ok := namedIn(t, "CostVec"); ok {
				p.Report(lhs.Pos(), "overwriting a CostVec discards charged cycles; accumulate with CostVec.AddVec")
			}
		}
	}
}

// isCostVecElem reports whether e is an index into a CostVec (directly or
// through a pointer).
func (p *Pass) isCostVecElem(e ast.Expr) bool {
	idx, ok := e.(*ast.IndexExpr)
	if !ok {
		return false
	}
	_, ok = namedIn(p.Info.TypeOf(idx.X), "CostVec")
	return ok
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
