package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags `for … range` over a map in simulation-deterministic code:
// Go randomizes map iteration order per run, so any order-dependent effect
// inside the loop breaks bit-identical replay. A range is accepted when the
// analyzer can prove it order-insensitive:
//
//   - the body only performs commutative integer accumulation (+=, -=, |=,
//     &=, ^=, ++, --), assigns constants, deletes the current key, or
//     breaks/continues — the result is the same whatever the visit order;
//   - or the loop is the collect-keys idiom: its body only appends the key
//     to a slice, and the very next statement sorts that slice.
//
// Everything else needs an explicit //dsplint:ignore maporder <reason>.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "flag order-sensitive map iteration in simulation-deterministic code",
	Run:  runMapOrder,
}

func runMapOrder(p *Pass) {
	for _, f := range p.Files {
		if !f.Deterministic {
			continue
		}
		p.mapRangesInBlocks(f.AST, func(rng *ast.RangeStmt, next ast.Stmt) {
			if _, ok := p.Info.TypeOf(rng.X).Underlying().(*types.Map); !ok {
				return
			}
			if p.orderInsensitiveBody(rng) {
				return
			}
			if p.keyCollectIdiom(rng, next) {
				return
			}
			p.Report(rng.Pos(),
				"iteration over map %s has order-dependent effects; iterate sorted keys instead (or annotate //dsplint:ignore maporder <reason>)",
				types.ExprString(rng.X))
		})
	}
}

// mapRangesInBlocks walks the file and calls fn for every RangeStmt,
// passing the statement that lexically follows it in its enclosing block
// (nil when it is the last statement or not directly inside a block).
func (p *Pass) mapRangesInBlocks(file *ast.File, fn func(*ast.RangeStmt, ast.Stmt)) {
	following := make(map[*ast.RangeStmt]ast.Stmt)
	ast.Inspect(file, func(n ast.Node) bool {
		var list []ast.Stmt
		switch b := n.(type) {
		case *ast.BlockStmt:
			list = b.List
		case *ast.CaseClause:
			list = b.Body
		case *ast.CommClause:
			list = b.Body
		default:
			return true
		}
		for i, s := range list {
			if r, ok := s.(*ast.RangeStmt); ok && i+1 < len(list) {
				following[r] = list[i+1]
			}
		}
		return true
	})
	ast.Inspect(file, func(n ast.Node) bool {
		if r, ok := n.(*ast.RangeStmt); ok {
			fn(r, following[r])
		}
		return true
	})
}

// orderInsensitiveBody reports whether every statement in the range body is
// provably insensitive to iteration order.
func (p *Pass) orderInsensitiveBody(rng *ast.RangeStmt) bool {
	for _, s := range rng.Body.List {
		if !p.orderInsensitiveStmt(s, rng) {
			return false
		}
	}
	return true
}

func (p *Pass) orderInsensitiveStmt(s ast.Stmt, rng *ast.RangeStmt) bool {
	switch st := s.(type) {
	case *ast.BlockStmt:
		for _, inner := range st.List {
			if !p.orderInsensitiveStmt(inner, rng) {
				return false
			}
		}
		return true
	case *ast.IfStmt:
		if st.Init != nil || !p.pureExpr(st.Cond) {
			return false
		}
		if !p.orderInsensitiveStmt(st.Body, rng) {
			return false
		}
		return st.Else == nil || p.orderInsensitiveStmt(st.Else, rng)
	case *ast.BranchStmt:
		// Unlabeled break/continue: which iteration triggers them is only
		// observable through effects the other cases already constrain.
		return (st.Tok == token.BREAK || st.Tok == token.CONTINUE) && st.Label == nil
	case *ast.IncDecStmt:
		return p.pureExpr(st.X)
	case *ast.AssignStmt:
		return p.orderInsensitiveAssign(st)
	case *ast.ExprStmt:
		// delete(m, k) visits each key exactly once regardless of order.
		if call, ok := st.X.(*ast.CallExpr); ok && p.isBuiltin(call.Fun, "delete") {
			return len(call.Args) == 2 && p.pureExpr(call.Args[0]) && p.pureExpr(call.Args[1])
		}
		return false
	default:
		return false
	}
}

// orderInsensitiveAssign accepts commutative integer accumulation
// (x += e, x -= e, x |= e, x &= e, x ^= e) and constant assignment
// (x = <constant>): both yield the same final state under any visit order.
func (p *Pass) orderInsensitiveAssign(st *ast.AssignStmt) bool {
	if len(st.Lhs) != 1 || len(st.Rhs) != 1 || !p.pureExpr(st.Lhs[0]) {
		return false
	}
	switch st.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		// Commutative and associative only over integers: float rounding
		// makes += order-sensitive in the low bits.
		t := p.Info.TypeOf(st.Lhs[0])
		if t == nil {
			return false
		}
		b, ok := t.Underlying().(*types.Basic)
		if !ok || b.Info()&types.IsInteger == 0 {
			return false
		}
		return p.pureExpr(st.Rhs[0])
	case token.ASSIGN:
		tv, ok := p.Info.Types[st.Rhs[0]]
		return ok && tv.Value != nil // constant: same value every iteration
	}
	return false
}

// keyCollectIdiom recognizes
//
//	for k := range m { s = append(s, k) }
//	sort.Xxx(s…)          // or slices.Sort(s…)
//
// where the sort immediately follows the loop.
func (p *Pass) keyCollectIdiom(rng *ast.RangeStmt, next ast.Stmt) bool {
	key, ok := rng.Key.(*ast.Ident)
	if !ok || key.Name == "_" {
		return false
	}
	if v, ok := rng.Value.(*ast.Ident); ok && v.Name != "_" {
		return false
	}
	if len(rng.Body.List) != 1 {
		return false
	}
	asg, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 || asg.Tok != token.ASSIGN {
		return false
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok || !p.isBuiltin(call.Fun, "append") || len(call.Args) != 2 || call.Ellipsis != token.NoPos {
		return false
	}
	dst, ok := call.Args[0].(*ast.Ident)
	if !ok || types.ExprString(asg.Lhs[0]) != dst.Name {
		return false
	}
	arg, ok := call.Args[1].(*ast.Ident)
	if !ok {
		return false
	}
	keyObj := p.Info.Defs[key]
	if keyObj == nil {
		keyObj = p.Info.Uses[key] // `for k = range m` over an existing var
	}
	if keyObj == nil || p.Info.Uses[arg] != keyObj {
		return false
	}
	return p.sortsSlice(next, dst.Name)
}

// sortsSlice reports whether stmt is a sort.* or slices.Sort* call whose
// first argument mentions the identifier name.
func (p *Pass) sortsSlice(stmt ast.Stmt, name string) bool {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkgPath, ok := p.selectorPackage(sel)
	if !ok || (pkgPath != "sort" && pkgPath != "slices") {
		return false
	}
	found := false
	ast.Inspect(call.Args[0], func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			found = true
		}
		return true
	})
	return found
}

// pureExpr reports whether e evaluates without side effects: identifiers,
// selectors, index expressions, literals, unary/binary operators, and calls
// to the pure builtins len and cap.
func (p *Pass) pureExpr(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.Ident, *ast.BasicLit:
		return true
	case *ast.SelectorExpr:
		return p.pureExpr(x.X)
	case *ast.IndexExpr:
		return p.pureExpr(x.X) && p.pureExpr(x.Index)
	case *ast.ParenExpr:
		return p.pureExpr(x.X)
	case *ast.StarExpr:
		return p.pureExpr(x.X)
	case *ast.UnaryExpr:
		return x.Op != token.AND && p.pureExpr(x.X)
	case *ast.BinaryExpr:
		return p.pureExpr(x.X) && p.pureExpr(x.Y)
	case *ast.CallExpr:
		if p.isBuiltin(x.Fun, "len") || p.isBuiltin(x.Fun, "cap") {
			return len(x.Args) == 1 && p.pureExpr(x.Args[0])
		}
		return false
	default:
		return false
	}
}

// isBuiltin reports whether fun denotes the named Go builtin.
func (p *Pass) isBuiltin(fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isBuiltin := p.Info.Uses[id].(*types.Builtin)
	return isBuiltin
}
