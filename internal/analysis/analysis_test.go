package analysis_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"streamscale/internal/analysis"
)

var update = flag.Bool("update", false, "rewrite the expected.txt golden files")

// TestAnalyzersGolden loads every fixture package under testdata/src and
// compares the full dsplint output (all analyzers, formatted exactly as the
// driver prints it, with base filenames) against the package's expected.txt.
// pos fixtures must produce every expected diagnostic; neg fixtures must
// produce none. Run with -update to regenerate the golden files after
// changing an analyzer or fixture.
func TestAnalyzersGolden(t *testing.T) {
	dirs, err := filepath.Glob(filepath.Join("testdata", "src", "*", "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) == 0 {
		t.Fatal("no fixture packages under testdata/src")
	}
	sort.Strings(dirs)

	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	// Fixtures opt into the deterministic file set by directory: detrand and
	// maporder only apply there, and the other analyzers must not care.
	loader.Deterministic = func(importPath, _ string) bool {
		return strings.Contains(importPath, "/detrand/") || strings.Contains(importPath, "/maporder/")
	}

	for _, dir := range dirs {
		rel := filepath.ToSlash(dir) // testdata/src/<analyzer>/<pos|neg>
		name := strings.TrimPrefix(rel, "testdata/src/")
		t.Run(name, func(t *testing.T) {
			pkg, err := loader.LoadDir(dir, loader.ModPath+"/internal/analysis/"+rel)
			if err != nil {
				t.Fatalf("loading fixture: %v", err)
			}
			diags := analysis.RunAnalyzers(pkg, analysis.All())
			var sb strings.Builder
			for _, d := range diags {
				fmt.Fprintf(&sb, "%s:%d:%d: %s: %s\n",
					filepath.Base(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
			}
			got := sb.String()

			golden := filepath.Join(dir, "expected.txt")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics differ from %s (re-run with -update after intentional changes)\n--- got ---\n%s--- want ---\n%s",
					golden, got, want)
			}
			if strings.HasSuffix(name, "/pos") && got == "" {
				t.Errorf("pos fixture produced no diagnostics")
			}
			if strings.HasSuffix(name, "/neg") && got != "" {
				t.Errorf("neg fixture produced diagnostics:\n%s", got)
			}
		})
	}
}
