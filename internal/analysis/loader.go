package analysis

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string // import path
	Dir   string
	Fset  *token.FileSet
	Types *types.Package
	Info  *types.Info
	Files []*SourceFile
}

// Loader parses and type-checks packages of the enclosing module without
// any dependencies beyond the standard library: module-internal imports are
// resolved straight from the source tree, standard-library imports through
// go/importer's source importer.
type Loader struct {
	Fset    *token.FileSet
	ModRoot string // absolute path of the module root (dir of go.mod)
	ModPath string // module path from go.mod

	// Deterministic classifies a file as simulation-deterministic given its
	// package import path and base filename. Nil means no file is.
	Deterministic func(importPath, filename string) bool

	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader returns a loader rooted at the module containing dir.
func NewLoader(dir string) (*Loader, error) {
	root, modPath, err := FindModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		ModRoot: root,
		ModPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}, nil
}

// FindModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func FindModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("analysis: no go.mod found above %s", abs)
		}
		d = parent
	}
}

// Import implements types.Importer: module-internal paths load from source,
// everything else is delegated to the standard-library source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// load resolves a module-internal import path to its directory and loads it.
func (l *Loader) load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")
	return l.LoadDir(filepath.Join(l.ModRoot, filepath.FromSlash(rel)), path)
}

// LoadDir parses and type-checks the package in dir under the given import
// path. Test files (_test.go) are skipped: dsplint guards production
// simulation code, and test-only dependencies would drag in packages the
// checker does not need.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go source files in %s", dir)
	}

	var files []*ast.File
	var srcs []*SourceFile
	for _, n := range names {
		full := filepath.Join(dir, n)
		f, err := parser.ParseFile(l.Fset, full, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if !buildIncluded(f) {
			continue
		}
		files = append(files, f)
		det := l.Deterministic != nil && l.Deterministic(path, n)
		srcs = append(srcs, &SourceFile{AST: f, Deterministic: det})
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: all Go source files in %s are excluded by build constraints", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", path, typeErrs[0])
	}

	pkg := &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.Fset,
		Types: tpkg,
		Info:  info,
		Files: srcs,
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// DefaultDeterministic is the repo policy for the simulation-deterministic
// file set: the discrete-event kernel and scheduler, the hardware model,
// the profiler, the input generators, the benchmark applications, the
// placement cost model and search, the trace recorder (whose artifacts must
// be byte-identical across runs), the sim path of the engine (every file
// except the *native* runtime), and the dspreport driver whose output must
// be bit-identical across runs.
func DefaultDeterministic(modPath string) func(importPath, filename string) bool {
	full := map[string]bool{
		modPath + "/internal/sim":        true,
		modPath + "/internal/hw":         true,
		modPath + "/internal/profiler":   true,
		modPath + "/internal/gen":        true,
		modPath + "/internal/apps":       true,
		modPath + "/internal/place":      true,
		modPath + "/internal/place/eval": true,
		modPath + "/internal/trace":      true,
		modPath + "/cmd/dspreport":       true,
	}
	return func(importPath, filename string) bool {
		if full[importPath] {
			return true
		}
		if importPath == modPath+"/internal/engine" {
			return !strings.Contains(filepath.Base(filename), "native")
		}
		return false
	}
}

// buildIncluded reports whether the file participates in a default (no
// extra build tags) compilation on this host: GOOS/GOARCH, the gc
// compiler, "unix" on unix-like systems, and release tags evaluate true;
// every other tag — notably "race" — evaluates false, matching what a
// plain `go build` selects. Files with no constraint are always included.
func buildIncluded(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				return true
			}
			return expr.Eval(defaultBuildTag)
		}
	}
	return true
}

func defaultBuildTag(tag string) bool {
	switch tag {
	case runtime.GOOS, runtime.GOARCH, "gc":
		return true
	case "unix":
		switch runtime.GOOS {
		case "linux", "darwin", "freebsd", "netbsd", "openbsd", "solaris", "aix", "dragonfly":
			return true
		}
		return false
	}
	return strings.HasPrefix(tag, "go1.")
}
