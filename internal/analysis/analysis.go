// Package analysis is dsplint's engine: a small, dependency-free static
// analysis framework plus the repo-specific analyzers that keep the
// simulator's load-bearing invariants machine-checked:
//
//   - detrand: simulation-deterministic code must not consult the global
//     math/rand source or the wall clock (see detrand.go).
//   - maporder: map iteration in deterministic code must be provably
//     order-insensitive or sorted (see maporder.go).
//   - hotalloc: functions annotated //dsp:hotpath must not allocate
//     (see hotalloc.go).
//   - bucketswitch: switches over hw.Bucket must be exhaustive
//     (see bucketswitch.go).
//   - cyclecharge: per-bucket cycle counters are written only through the
//     designated charging API (see cyclecharge.go).
//
// and the concurrency-discipline suite guarding the lock-free native
// runtime (internal/ring and its users):
//
//   - atomicfield: a field accessed via sync/atomic anywhere is accessed
//     atomically everywhere, and unsynchronized fields of atomic-bearing
//     structs declare their owner (see atomicfield.go).
//   - linelayout: //dsp:padded structs keep ownership domains and atomics
//     on separate 64-byte cache lines, with offsets computed by
//     go/types.Sizes (see linelayout.go).
//   - hotsync: //dsp:hotpath functions contain no channel operations,
//     mutex locks, wall-clock reads, or unyielding spin loops
//     (see hotsync.go).
//
// The framework is intentionally minimal — build on go/ast, go/parser,
// go/token, and go/types only, so the lint gate needs nothing beyond the
// standard library.
//
// # Annotations
//
// Five comment directives tune the analyzers:
//
//	//dsplint:ignore <analyzer> <reason>
//	    Suppresses the named analyzer's diagnostics on the directive's
//	    line and the line that follows it. The reason is mandatory.
//
//	//dsplint:wallclock
//	    On a function's doc comment: the function intentionally measures
//	    wall-clock time (e.g. a harness reporting real elapsed seconds),
//	    so detrand and hotsync permit time.Now/Since/Until inside it.
//
//	//dsp:hotpath
//	    On a function's doc comment: the function is a hot path; hotalloc
//	    forbids allocating constructs and hotsync forbids blocking
//	    synchronization in its body.
//
//	//dsp:owned(<domain>)
//	    On a struct field: declares the field's single writer domain
//	    (see annotations.go).
//
//	//dsp:padded
//	    On a struct type: the struct's cache-line layout is checked by
//	    linelayout (see annotations.go).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one lint finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one named check run over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(p *Pass)
}

// All lists every dsplint analyzer in stable order. ci.sh asserts this
// count, so an analyzer that exists but is not registered here fails the
// build instead of silently not running.
func All() []*Analyzer {
	return []*Analyzer{DetRand, MapOrder, HotAlloc, BucketSwitch, CycleCharge, AtomicField, LineLayout, HotSync}
}

// SourceFile pairs one parsed file with its lint metadata.
type SourceFile struct {
	AST *ast.File
	// Deterministic marks the file as part of the simulation-deterministic
	// set, where detrand and maporder apply.
	Deterministic bool
}

// Pass is the unit of work handed to each analyzer: one type-checked
// package plus a shared diagnostic sink.
type Pass struct {
	Fset  *token.FileSet
	Path  string // import path
	Pkg   *types.Package
	Info  *types.Info
	Files []*SourceFile

	ignores map[string]map[int]map[string]bool // filename -> line -> analyzers
	diags   *[]Diagnostic
	cur     *Analyzer

	// Concurrency-discipline annotation state, collected once per pass by
	// collectStructAnnotations (see annotations.go).
	structs     []*structInfo
	fieldOf     map[*types.Var]*fieldInfo
	structOfObj map[*types.TypeName]*structInfo
}

// Report records a diagnostic at pos unless an ignore directive suppresses
// it.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if ig := p.ignores[position.Filename]; ig != nil && ig[position.Line][p.cur.Name] {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{Pos: position, Analyzer: p.cur.Name, Message: fmt.Sprintf(format, args...)})
}

// FuncHasDirective reports whether fn's doc comment carries the directive
// (e.g. "//dsplint:wallclock" or "//dsp:hotpath").
func FuncHasDirective(fn *ast.FuncDecl, directive string) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.TrimSpace(c.Text) == directive {
			return true
		}
	}
	return false
}

// knownAnalyzers is the set of names //dsplint:ignore may reference.
func knownAnalyzers() map[string]bool {
	m := make(map[string]bool)
	for _, a := range All() {
		m[a.Name] = true
	}
	return m
}

const ignorePrefix = "//dsplint:ignore"

// buildIgnores parses //dsplint:ignore directives in file and returns the
// line->analyzers suppression map. Malformed directives (missing analyzer
// name, unknown analyzer, or missing reason) are reported as diagnostics —
// an escape hatch that does not say what it escapes or why is a smell in
// its own right.
func buildIgnores(fset *token.FileSet, file *ast.File, sink *[]Diagnostic) map[int]map[string]bool {
	known := knownAnalyzers()
	ignores := make(map[int]map[string]bool)
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(c.Text)
			if !strings.HasPrefix(text, ignorePrefix) {
				continue
			}
			pos := fset.Position(c.Pos())
			fields := strings.Fields(strings.TrimPrefix(text, ignorePrefix))
			bad := func(msg string) {
				*sink = append(*sink, Diagnostic{Pos: pos, Analyzer: "directive", Message: msg})
			}
			if len(fields) == 0 {
				bad("dsplint:ignore directive names no analyzer")
				continue
			}
			if !known[fields[0]] {
				bad(fmt.Sprintf("dsplint:ignore names unknown analyzer %q", fields[0]))
				continue
			}
			if len(fields) < 2 {
				bad(fmt.Sprintf("dsplint:ignore %s gives no reason", fields[0]))
				continue
			}
			for _, line := range []int{pos.Line, pos.Line + 1} {
				if ignores[line] == nil {
					ignores[line] = make(map[string]bool)
				}
				ignores[line][fields[0]] = true
			}
		}
	}
	return ignores
}

// RunAnalyzers runs every analyzer in as over pkg and returns the combined
// diagnostics sorted by position.
func RunAnalyzers(pkg *Package, as []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	ignores := make(map[string]map[int]map[string]bool)
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.AST.Pos()).Filename
		ignores[name] = buildIgnores(pkg.Fset, f.AST, &diags)
	}
	pass := &Pass{
		Fset:    pkg.Fset,
		Path:    pkg.Path,
		Pkg:     pkg.Types,
		Info:    pkg.Info,
		Files:   pkg.Files,
		ignores: ignores,
		diags:   &diags,
	}
	collectStructAnnotations(pass, &diags)
	for _, a := range as {
		pass.cur = a
		a.Run(pass)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags
}

// hwPath reports whether path is the hardware-model package, where the
// Bucket and CostVec types live.
func hwPath(path string) bool {
	return path == "streamscale/internal/hw" || strings.HasSuffix(path, "/internal/hw")
}

// namedIn reports whether t (after stripping pointers) is the named type
// name defined in the hardware-model package, returning the *types.Named.
func namedIn(t types.Type, name string) (*types.Named, bool) {
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	n, ok := t.(*types.Named)
	if !ok {
		return nil, false
	}
	obj := n.Obj()
	if obj.Name() != name || obj.Pkg() == nil || !hwPath(obj.Pkg().Path()) {
		return nil, false
	}
	return n, true
}
