package analysis

import (
	"go/types"
	"runtime"
)

// LineLayout turns the rings' padding comments into a checked property.
// The paper's profiling methodology centers on cache-coherence traffic;
// the lock-free SPSC ring's whole point is that producer and consumer
// never write the same 64-byte line. That property lives in fragile
// `_ [cacheLine - 16]byte` arithmetic today — one field added above the
// pad silently shifts every offset and reintroduces the false sharing the
// padding exists to prevent (exactly the bug this analyzer found in the
// PR 6 layout: cachedTail and tail shared a line because the pad assumed
// head started line-aligned).
//
// Structs annotated //dsp:padded get their real field offsets computed
// with go/types.Sizes for the host GOARCH. The analyzer fails when two
// fields that must not share a coherence granule land on the same 64-byte
// line, assuming a line-aligned struct base:
//
//   - two typed sync/atomic fields (the head/tail indices both sides hammer)
//   - two fields whose declared //dsp:owned domains differ
//
// Unannotated plain fields are treated as read-mostly (set at construction,
// safe to share with anything); if a field is written concurrently it must
// carry a domain, which atomicfield enforces.
//
// Generic structs are checked with every type parameter instantiated as
// int64; a struct whose layout depends on a type parameter in a way int64
// cannot witness should hoist the hot indices into a non-generic header.
// If instantiation fails, that is reported — a declared layout invariant
// must never be skipped silently.
var LineLayout = &Analyzer{
	Name: "linelayout",
	Doc:  "//dsp:padded structs keep ownership domains and atomics on separate cache lines",
	Run:  runLineLayout,
}

// lineBytes is the assumed coherence granule, matching ring.cacheLine.
const lineBytes = 64

func runLineLayout(p *Pass) {
	sizes := types.SizesFor("gc", runtime.GOARCH)
	if sizes == nil {
		sizes = types.SizesFor("gc", "amd64")
	}
	for _, si := range p.structs {
		if !si.padded {
			continue
		}
		p.checkPaddedStruct(si, sizes)
	}
}

func (p *Pass) checkPaddedStruct(si *structInfo, sizes types.Sizes) {
	named, ok := si.obj.Type().(*types.Named)
	if !ok {
		p.Report(si.spec.Pos(), "cannot resolve the type of //dsp:padded struct %s", si.name)
		return
	}
	if tp := named.TypeParams(); tp.Len() > 0 {
		targs := make([]types.Type, tp.Len())
		for i := range targs {
			targs[i] = types.Typ[types.Int64]
		}
		inst, err := types.Instantiate(nil, named, targs, true)
		if err != nil {
			p.Report(si.spec.Pos(),
				"cannot resolve the layout of //dsp:padded generic struct %s: %v (layout is checked with every type parameter instantiated as int64)",
				si.name, err)
			return
		}
		named, ok = inst.(*types.Named)
		if !ok {
			p.Report(si.spec.Pos(), "cannot resolve the layout of //dsp:padded generic struct %s", si.name)
			return
		}
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok || st.NumFields() != len(si.fields) {
		p.Report(si.spec.Pos(), "cannot resolve the fields of //dsp:padded struct %s", si.name)
		return
	}

	vars := make([]*types.Var, st.NumFields())
	for i := range vars {
		vars[i] = st.Field(i)
	}
	offsets := sizes.Offsetsof(vars)

	type span struct {
		fi       *fieldInfo
		off      int64
		lo, hi   int64 // first and last occupied 64-byte line
		occupied bool
	}
	spans := make([]span, len(vars))
	for i, v := range vars {
		sz := sizes.Sizeof(v.Type())
		spans[i] = span{
			fi: si.fields[i], off: offsets[i],
			lo: offsets[i] / lineBytes, hi: (offsets[i] + sz - 1) / lineBytes,
			occupied: sz > 0,
		}
	}
	for i := 0; i < len(spans); i++ {
		for j := i + 1; j < len(spans); j++ {
			a, b := spans[i], spans[j]
			if !a.occupied || !b.occupied || b.lo > a.hi || a.lo > b.hi {
				continue
			}
			switch {
			case a.fi.atomic && b.fi.atomic:
				p.Report(b.fi.pos,
					"atomic fields %s and %s of //dsp:padded struct %s share a 64-byte line (offsets %d and %d); pad them onto separate lines",
					a.fi.name, b.fi.name, si.name, a.off, b.off)
			case a.fi.domain != "" && b.fi.domain != "" && a.fi.domain != b.fi.domain:
				p.Report(b.fi.pos,
					"fields %s (//dsp:owned(%s)) and %s (//dsp:owned(%s)) of //dsp:padded struct %s share a 64-byte line (offsets %d and %d); cross-domain sharing ping-pongs the line between cores",
					a.fi.name, a.fi.domain, b.fi.name, b.fi.domain, si.name, a.off, b.off)
			}
		}
	}
}
