package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicField enforces the shared-memory access discipline the lock-free
// runtime rests on. The native engine's rings (internal/ring) synchronize
// exclusively through sync/atomic; their correctness depends on unwritten
// rules this analyzer turns into checked ones:
//
//  1. A struct field accessed through sync/atomic anywhere must be accessed
//     atomically everywhere. One plain read of an atomically-written index
//     is a data race the race detector only catches when the interleaving
//     cooperates; the analyzer catches it always.
//
//  2. In a struct that carries atomic fields (a lock-free structure), every
//     plain field written by the struct's methods must declare its single
//     writer with //dsp:owned(<domain>) — the rings' cached peer indices
//     (cachedHead/cachedTail) are deliberately unsynchronized, and that
//     deliberateness must be written down, not assumed. Construction-time
//     writes from package functions (New*) are exempt; the discipline
//     governs the concurrent phase, which is method-shaped.
//
//  3. //dsp:owned on a plain field contradicts sync/atomic access to the
//     same field: owned means unsynchronized single-owner, atomic means
//     shared. Declaring both is reported.
//
// Typed atomics (atomic.Uint64 and friends) are structurally safe — every
// access goes through their methods — so they are exempt from rule 1 and
// count only as evidence that the struct is concurrency-shared (rule 2).
// On a typed atomic field, //dsp:owned declares the writing side for
// linelayout's benefit and is not a contradiction.
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc:  "atomic fields stay atomic everywhere; unsynchronized fields of lock-free structs declare an owner",
	Run:  runAtomicField,
}

func runAtomicField(p *Pass) {
	atomicCalled, exempt := p.atomicCallSites()

	// Rule 1: plain access to an atomically-accessed plain field.
	for _, f := range p.Files {
		ast.Inspect(f.AST, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || exempt[sel] {
				return true
			}
			v := p.fieldVar(sel)
			if v == nil || !atomicCalled[v] || isAtomicType(v.Type()) {
				return true
			}
			p.Report(sel.Pos(),
				"field %s is accessed via sync/atomic elsewhere; this plain access is a data race (make every access atomic)",
				v.Name())
			return true
		})
	}

	// Rule 3: owned plain fields must not also be atomically accessed.
	for _, si := range p.structs {
		for _, fi := range si.fields {
			if fi.domain != "" && !fi.atomic && fi.obj != nil && atomicCalled[fi.obj] {
				p.Report(fi.domainPos,
					"//dsp:owned(%s) field %s is also accessed via sync/atomic; owned means unsynchronized single-owner — drop the annotation or the atomics",
					fi.domain, fi.name)
			}
		}
	}

	// Rule 2: undeclared plain-field writes in methods of atomic-bearing
	// structs.
	for _, f := range p.Files {
		for _, decl := range f.AST.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			si := p.receiverStruct(fn)
			if si == nil || !si.hasAtomic(atomicCalled) {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range x.Lhs {
						p.checkOwnedWrite(si, lhs, atomicCalled)
					}
				case *ast.IncDecStmt:
					p.checkOwnedWrite(si, x.X, atomicCalled)
				}
				return true
			})
		}
	}
}

// atomicCallSites scans the package for sync/atomic function calls taking
// the address of a struct field (atomic.AddInt64(&s.n, 1) and friends). It
// returns the set of fields so accessed plus the selector nodes appearing
// inside those calls, which rule 1 must not re-report as plain accesses.
func (p *Pass) atomicCallSites() (map[*types.Var]bool, map[ast.Node]bool) {
	atomicCalled := make(map[*types.Var]bool)
	exempt := make(map[ast.Node]bool)
	for _, f := range p.Files {
		ast.Inspect(f.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if path, ok := p.selectorPackage(sel); !ok || path != "sync/atomic" {
				return true
			}
			for _, a := range call.Args {
				u, ok := a.(*ast.UnaryExpr)
				if !ok || u.Op != token.AND {
					continue
				}
				fsel, ok := u.X.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if v := p.fieldVar(fsel); v != nil {
					atomicCalled[v] = true
					exempt[fsel] = true
				}
			}
			return true
		})
	}
	return atomicCalled, exempt
}

// checkOwnedWrite reports a write through expr when it targets a plain,
// undeclared field of si.
func (p *Pass) checkOwnedWrite(si *structInfo, expr ast.Expr, atomicCalled map[*types.Var]bool) {
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		return
	}
	v := p.fieldVar(sel)
	if v == nil {
		return
	}
	fi := p.fieldOf[v]
	if fi == nil || fi.owner != si {
		return
	}
	if fi.atomic || fi.domain != "" || atomicCalled[v] {
		return // typed atomic, declared owner, or already rule-1 territory
	}
	p.Report(sel.Pos(),
		"unsynchronized write to field %s of %s, which carries atomic fields; declare the single writer with //dsp:owned(<domain>) on the field or use an atomic",
		v.Name(), si.name)
}
