package analysis

import (
	"go/ast"
	"go/types"
)

// DetRand forbids the two classic determinism leaks in simulation code:
// the global math/rand source (shared, racily seeded, and not replayable
// per component) and the wall clock. Simulation randomness must flow from
// an explicitly seeded *rand.Rand; wall-clock reads are allowed only in
// functions annotated //dsplint:wallclock, which marks intentional
// real-time measurement (harness timing, progress reporting).
var DetRand = &Analyzer{
	Name: "detrand",
	Doc:  "forbid global math/rand and time.Now in simulation-deterministic code",
	Run:  runDetRand,
}

// globalRandFuncs are the math/rand package-level functions backed by the
// shared global source. Constructors (New, NewSource, NewZipf) are fine:
// they are how seeded generators are made.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
	// math/rand/v2 spellings of the same global-source calls.
	"IntN": true, "Int32": true, "Int32N": true, "Int64": true,
	"Int64N": true, "UintN": true, "Uint": true, "Uint32N": true,
	"Uint64N": true, "N": true,
}

// wallClockFuncs are the time package functions that read the wall clock.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
}

func runDetRand(p *Pass) {
	for _, f := range p.Files {
		if !f.Deterministic {
			continue
		}
		for _, decl := range f.AST.Decls {
			var body ast.Node = decl // package-level var initializers count too
			wallclock := false
			if fn, ok := decl.(*ast.FuncDecl); ok {
				if fn.Body == nil {
					continue
				}
				body = fn.Body
				wallclock = FuncHasDirective(fn, "//dsplint:wallclock")
			}
			ast.Inspect(body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				pkgPath, ok := p.selectorPackage(sel)
				if !ok {
					return true
				}
				switch {
				case (pkgPath == "math/rand" || pkgPath == "math/rand/v2") && globalRandFuncs[sel.Sel.Name]:
					p.Report(sel.Pos(),
						"call to the global math/rand source (rand.%s) in simulation-deterministic code; use an explicitly seeded *rand.Rand",
						sel.Sel.Name)
				case pkgPath == "time" && wallClockFuncs[sel.Sel.Name] && !wallclock:
					p.Report(sel.Pos(),
						"time.%s in simulation-deterministic code; simulated time comes from the kernel clock (annotate the function //dsplint:wallclock if this is intentional wall-time measurement)",
						sel.Sel.Name)
				}
				return true
			})
		}
	}
}

// selectorPackage resolves sel's base to an imported package, returning its
// import path.
func (p *Pass) selectorPackage(sel *ast.SelectorExpr) (string, bool) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := p.Info.Uses[id].(*types.PkgName)
	if !ok {
		return "", false
	}
	return pn.Imported().Path(), true
}
