#!/usr/bin/env bash
# CI gate: build, vet, and the full test suite under the race detector.
# The race detector is load-bearing here — the bench harness fans
# simulation cells across goroutines (bench.RunCells), and the determinism
# test exercises that pool at jobs=4.
set -euo pipefail
cd "$(dirname "$0")"

go build ./...
go vet ./...
# dsplint enforces the repo-specific invariants (determinism, cycle
# accounting, hot-path allocation discipline, and the lock-free concurrency
# discipline); see DESIGN.md "Machine-checked invariants" and "Concurrency
# discipline". Exits non-zero on any diagnostic. The count assertion keeps
# the suite honest: an analyzer that exists but is not registered in
# analysis.All() never runs, so registration is a checked property too.
analyzers=$(go run ./cmd/dsplint -list | wc -l)
if [ "$analyzers" -ne 8 ]; then
  echo "ci: dsplint -list reports $analyzers analyzers, want 8" >&2
  exit 1
fi
go run ./cmd/dsplint ./...
# -timeout raised above the go test default (10m): the race detector's
# ~10x slowdown pushes internal/bench past 10 minutes on small hosts.
go test -race -timeout 45m ./...
# Cache-equivalence gate: the same sweep run cold (simulate + persist)
# and warm (replay from the -cache directory, zero simulations) must
# produce byte-identical experiment tables. Run without -race so it
# exercises the exact code the CLIs ship.
go test -run TestColdVsWarmEquivalence -count=1 ./internal/bench/
# Benchmark stage: produce machine-readable trajectory records for two
# representative apps (one per engine profile). dspbench writes
# BENCH_<app>_<system>.json next to the working directory; keep them
# out of the tree.
BENCH_DIR=$(mktemp -d)
trap 'rm -rf "$BENCH_DIR"' EXIT
go build -o "$BENCH_DIR/dspbench" ./cmd/dspbench
(cd "$BENCH_DIR" && ./dspbench -app wc -system storm -batch 8 -quiet -json >/dev/null)
(cd "$BENCH_DIR" && ./dspbench -app lr -system flink -batch 8 -quiet -json >/dev/null)
for f in BENCH_wc_storm.json BENCH_lr_flink.json; do
  test -s "$BENCH_DIR/$f" || { echo "ci: missing $f" >&2; exit 1; }
done
# Trace stage: a traced smoke cell must produce the three trace artifacts,
# and dsptrace must verify the lossless reconciliation (it exits non-zero
# when the folded stall cycles disagree with the machine's charged ledger).
(cd "$BENCH_DIR" && ./dspbench -app wc -system storm -sockets 1 -quiet -profile=false -trace trace_out >/dev/null)
for f in trace.json stalls.folded summary.json; do
  test -s "$BENCH_DIR/trace_out/$f" || { echo "ci: missing trace artifact $f" >&2; exit 1; }
done
go run ./cmd/dsptrace "$BENCH_DIR/trace_out" >/dev/null
# Native smoke stage: the lock-free runtime under the race detector (the
# goroutine-per-executor + SPSC-ring fabric is exactly what -race exists
# for), then a record-producing run on the release build.
go build -race -o "$BENCH_DIR/dspbench-race" ./cmd/dspbench
(cd "$BENCH_DIR" && ./dspbench-race -native -app wc -system storm -batch 4 -events 2000 >/dev/null)
(cd "$BENCH_DIR" && ./dspbench -native -app wc -system storm -batch 4 -chain -json >/dev/null)
test -s "$BENCH_DIR/BENCH_native_wc_storm.json" || { echo "ci: missing BENCH_native_wc_storm.json" >&2; exit 1; }
# Performance stage (non-race: wall-clock assertions): the ring runtime
# must stay >= 2x the preserved channel runtime on wc/storm/S=4, and the
# executor-to-executor ring hop must stay allocation-free.
DSP_PERF=1 go test -run TestNativePipelineSpeedup -count=1 ./internal/engine/
go test -run 'TestRingTransferZeroAllocs|TestRingMsgTransferZeroAllocs' -count=1 ./internal/ring/ ./internal/engine/
# Ring stress stage: the high-iteration SPSC/MPSC protocol hammer under the
# race detector (skipped without DSP_STRESS so plain `go test ./...` stays
# fast). Sequence checks catch lost/reordered items; -race catches the
# orderings the sequence checks cannot.
DSP_STRESS=1 go test -race -run TestRingStress -count=1 ./internal/ring/
# Fast-tier smoke stage: dspreport's tier-smoke experiment re-simulates its
# tiered sweep exhaustively and exits non-zero if any verified row differs
# from the untiered simulation path or the sweep-wide rank correlation
# falls below tau = 0.90 (bench.TierSmoke).
go run ./cmd/dspreport -tier -experiment tier-smoke -quiet >/dev/null
# Joint-search stage. Three gates:
#   (1) worker-count independence: the joint strategy's printed plan list
#       must be byte-identical at -jobs 1 and -jobs 8 (the search splits
#       its assignment tree across workers; the merge must not leak
#       scheduling order);
#   (2) the joint B&B determinism test under the race detector;
#   (3) dspreport's joint-smoke experiment, which simulates EVERY
#       top-ranked joint configuration for two rows and exits non-zero if
#       the screened-vs-measured rank correlation falls below tau = 0.90
#       or the joint winner regresses below the placement-only winner.
go build -o "$BENCH_DIR/dspplace" ./cmd/dspplace
(cd "$BENCH_DIR" && ./dspplace -app wc -system storm -strategy joint -scale 2 -batch 8 -jobs 1 > joint_j1.txt)
(cd "$BENCH_DIR" && ./dspplace -app wc -system storm -strategy joint -scale 2 -batch 8 -jobs 8 > joint_j8.txt)
diff "$BENCH_DIR/joint_j1.txt" "$BENCH_DIR/joint_j8.txt" || { echo "ci: joint search output differs across -jobs" >&2; exit 1; }
go test -race -run 'TestSearchJointDeterministicAcrossWorkers' -count=1 ./internal/place/
go run ./cmd/dspreport -experiment joint-smoke -quiet >/dev/null
# Tail stage. Three gates:
#   (1) bench.TailSmoke (via dspreport): on a deliberately backpressured
#       open-loop cell, the coordinated-omission-corrected p99 must not
#       fall below the uncorrected ablation, the per-root execute
#       attribution must stay a nonzero subset of hw.Machine's
#       ChargedCycles ledger, and the traced run must reproduce the
#       memoized run's latency distribution bit-for-bit;
#   (2) an open-loop every-tuple traced run must produce the artifacts;
#   (3) dsptrace -tail must recompute the worst tuple trees from raw
#       trace.json events and match summary.json's digest exactly
#       (it exits non-zero on any field mismatch). Run at k=5 (the digest
#       depth) and k=2 (fewer rows than the digest): the cross-check must
#       cover the full digest either way.
go run ./cmd/dspreport -experiment tail-smoke -quiet >/dev/null
(cd "$BENCH_DIR" && ./dspbench -app wc -system storm -sockets 1 -rate 150000 -quiet -profile=false -trace tail_trace -trace-every 1 -trace-cadence -1 >/dev/null)
go run ./cmd/dsptrace -tail 5 "$BENCH_DIR/tail_trace" >/dev/null
go run ./cmd/dsptrace -tail 2 "$BENCH_DIR/tail_trace" >/dev/null
